//===- PipelineFlags.h - The one command-line parser ------------*- C++ -*-===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for all three drivers, in one place. Each main
/// is a single call:
///
///     tools::PipelineArgs PA;
///     if (auto Exit = tools::parsePipelineFlags(ToolKind::Slam, argc,
///                                               argv, PA))
///       return *Exit;
///
/// and gets back a fully-populated slamtool::PipelineOptions plus the
/// positional inputs. Shared flags (observability, cube search,
/// workers, the prover cache) are therefore spelled, validated, and
/// documented identically across tools, and `--help` / unknown-option
/// behavior cannot drift: every tool prints its usage to stdout on
/// --help (exit 0) and a one-line "unknown option ... (try --help)" to
/// stderr otherwise (exit 2).
///
//===----------------------------------------------------------------------===//

#ifndef TOOLS_PIPELINEFLAGS_H
#define TOOLS_PIPELINEFLAGS_H

#include "slam/Pipeline.h"
#include "slam/SafetySpec.h"
#include "support/CliArgs.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace slam {
namespace tools {

enum class ToolKind { Slam, C2bp, Bebop };

inline const char *toolName(ToolKind T) {
  switch (T) {
  case ToolKind::Slam:
    return "slam";
  case ToolKind::C2bp:
    return "c2bp";
  case ToolKind::Bebop:
    return "bebop";
  }
  return "?";
}

/// Everything a driver main needs from its command line.
struct PipelineArgs {
  slamtool::PipelineOptions Options;
  /// Positional arguments, in order (each tool's expected count is
  /// enforced by the parser).
  std::vector<std::string> Inputs;
  /// slam only: a --lock/--irp property was given.
  bool HaveSpec = false;
  slamtool::SafetySpec Spec;
};

inline void printHelp(ToolKind Tool) {
  static const char *Common =
      "  --trace-out <file>      write a Chrome trace-event JSON file\n"
      "  --stats-json <file>     write the statistics registry as JSON\n"
      "  --report                print the per-tool statistics report\n"
      "  --slow-query-ms <ms>    log slow prover queries to stderr\n"
      "  --help, -h              print this help and exit\n";
  switch (Tool) {
  case ToolKind::Slam:
    std::printf(
        "usage: slam <program.c> [options]\n\n"
        "Runs the full abstract-check-refine loop on a C program.\n"
        "Without a property option, the program's own assert statements\n"
        "are checked (starting from an empty predicate set).\n\n"
        "  --lock <acq>,<rel>      check the locking discipline on the two\n"
        "                          named interface functions\n"
        "  --irp <complete>,<pend> check the IRP completion discipline\n"
        "  --entry <proc>          entry procedure (default: main)\n"
        "  --max-iters <n>         refinement cap (default: 24)\n"
        "  -k <n>                  cube length limit (default: 3)\n"
        "  -j <n>                  worker threads per abstraction pass\n"
        "                          (default: 1; 0 = one per hardware "
        "thread)\n"
        "  --prover-cache <file>   persist prover results across runs\n"
        "  --no-incremental        re-abstract every statement on every\n"
        "                          iteration (disable the reuse memo)\n"
        "%s",
        Common);
    return;
  case ToolKind::C2bp:
    std::printf(
        "usage: c2bp <program.c> <predicates.txt> [options]\n\n"
        "Writes the boolean program BP(P, E) to stdout.\n\n"
        "  -k <n>                  maximum cube length (default: "
        "unlimited)\n"
        "  -j <n>                  worker threads for the cube searches\n"
        "                          (default: 1; 0 = one per hardware\n"
        "                          thread); output is identical for every "
        "-j\n"
        "  --no-shared-cache       per-worker prover caches only\n"
        "  --no-cone               disable the cone-of-influence "
        "optimization\n"
        "  --no-enforce            do not emit the enforce data invariant\n"
        "  --no-alias              use the syntactic alias oracle only\n"
        "  --alias <mode>          points-to mode: das (default), "
        "andersen,\n"
        "                          steensgaard\n"
        "  --prover-cache <file>   persist prover results across runs\n"
        "  --stats                 print statistics to stderr\n"
        "%s",
        Common);
    return;
  case ToolKind::Bebop:
    std::printf(
        "usage: bebop <program.bp> [options]\n\n"
        "Model-checks a boolean program.\n\n"
        "  --entry <proc>           entry procedure (default: main)\n"
        "  --invariant <proc> <lbl> print the reachable-state invariant "
        "at\n"
        "                           a labeled statement\n"
        "  --trace                  print the counterexample trace on "
        "failure\n"
        "%s",
        Common);
    return;
  }
}

/// Parses \p Argv into \p Out. Returns an exit code when the process
/// should stop here (0 for --help, 2 for a usage error), nullopt to
/// proceed.
inline std::optional<int> parsePipelineFlags(ToolKind Tool, int Argc,
                                             char **Argv,
                                             PipelineArgs &Out) {
  const char *Name = toolName(Tool);
  slamtool::PipelineOptions &O = Out.Options;
  if (Tool == ToolKind::Slam)
    O.C2bp.Cubes.MaxCubeLength = 3; // The paper's k=3 default end to end.

  int I = 1;
  // Fetches the (single) value of the flag currently at Argv[I].
  auto Value = [&](const char *Flag) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "%s: %s requires a value\n", Name, Flag);
      return nullptr;
    }
    return Argv[++I];
  };
  auto SplitPair = [](const char *Arg, std::string &A, std::string &B) {
    const char *Comma = std::strchr(Arg, ',');
    if (!Comma)
      return false;
    A.assign(Arg, Comma);
    B.assign(Comma + 1);
    return !A.empty() && !B.empty();
  };

  for (; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-' || !Arg[1]) {
      Out.Inputs.push_back(Arg);
      continue;
    }
    long long N;

    // -- Flags every tool accepts ------------------------------------
    if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      printHelp(Tool);
      return 0;
    }
    if (!std::strcmp(Arg, "--trace-out")) {
      const char *V = Value(Arg);
      if (!V)
        return 2;
      O.Obs.TraceOutPath = V;
      continue;
    }
    if (!std::strcmp(Arg, "--stats-json")) {
      const char *V = Value(Arg);
      if (!V)
        return 2;
      O.Obs.StatsJsonPath = V;
      continue;
    }
    if (!std::strcmp(Arg, "--report")) {
      O.Obs.Report = true;
      continue;
    }
    if (!std::strcmp(Arg, "--slow-query-ms")) {
      const char *V = Value(Arg);
      if (!V || !cli::msArg(Name, "--slow-query-ms", V, O.Obs.SlowQueryMillis))
        return 2;
      continue;
    }

    // -- slam + c2bp: abstraction knobs ------------------------------
    if (Tool != ToolKind::Bebop) {
      if (!std::strcmp(Arg, "-k")) {
        const char *V = Value(Arg);
        if (!V || !cli::intArg(Name, "-k", V, 0, N))
          return 2;
        O.C2bp.Cubes.MaxCubeLength = static_cast<int>(N);
        continue;
      }
      if (!std::strcmp(Arg, "-j")) {
        const char *V = Value(Arg);
        if (!V || !cli::workersArg(Name, V, O.C2bp.NumWorkers))
          return 2;
        if (O.C2bp.NumWorkers == 0)
          O.C2bp.NumWorkers =
              static_cast<int>(ThreadPool::defaultConcurrency());
        continue;
      }
      if (!std::strcmp(Arg, "--prover-cache")) {
        const char *V = Value(Arg);
        if (!V)
          return 2;
        O.ProverCachePath = V;
        continue;
      }
    }

    // -- slam only ---------------------------------------------------
    if (Tool == ToolKind::Slam) {
      if (!std::strcmp(Arg, "--lock") || !std::strcmp(Arg, "--irp")) {
        bool Lock = Arg[2] == 'l';
        const char *V = Value(Arg);
        std::string A, B;
        if (!V || !SplitPair(V, A, B)) {
          std::fprintf(stderr, "%s: %s expects '<name>,<name>'\n", Name,
                       Arg);
          return 2;
        }
        Out.Spec = Lock ? slamtool::SafetySpec::lockDiscipline(A, B)
                        : slamtool::SafetySpec::irpDiscipline(A, B);
        Out.HaveSpec = true;
        continue;
      }
      if (!std::strcmp(Arg, "--entry")) {
        const char *V = Value(Arg);
        if (!V)
          return 2;
        O.Cegar.EntryProc = V;
        continue;
      }
      if (!std::strcmp(Arg, "--max-iters")) {
        const char *V = Value(Arg);
        if (!V || !cli::intArg(Name, "--max-iters", V, 1, N))
          return 2;
        O.Cegar.MaxIterations = static_cast<int>(N);
        continue;
      }
      if (!std::strcmp(Arg, "--no-incremental")) {
        O.Cegar.Incremental = false;
        continue;
      }
    }

    // -- c2bp only ---------------------------------------------------
    if (Tool == ToolKind::C2bp) {
      if (!std::strcmp(Arg, "--no-shared-cache")) {
        O.C2bp.UseSharedProverCache = false;
        continue;
      }
      if (!std::strcmp(Arg, "--no-cone")) {
        O.C2bp.Cubes.ConeOfInfluence = false;
        continue;
      }
      if (!std::strcmp(Arg, "--no-enforce")) {
        O.C2bp.UseEnforce = false;
        continue;
      }
      if (!std::strcmp(Arg, "--no-alias")) {
        O.C2bp.UseAliasAnalysis = false;
        continue;
      }
      if (!std::strcmp(Arg, "--alias")) {
        const char *V = Value(Arg);
        if (!V)
          return 2;
        if (!std::strcmp(V, "das"))
          O.C2bp.AliasMode = alias::Mode::Das;
        else if (!std::strcmp(V, "andersen"))
          O.C2bp.AliasMode = alias::Mode::Andersen;
        else if (!std::strcmp(V, "steensgaard"))
          O.C2bp.AliasMode = alias::Mode::Steensgaard;
        else {
          std::fprintf(stderr, "%s: unknown alias mode '%s'\n", Name, V);
          return 2;
        }
        continue;
      }
      if (!std::strcmp(Arg, "--stats")) {
        O.PrintStats = true;
        continue;
      }
    }

    // -- bebop only --------------------------------------------------
    if (Tool == ToolKind::Bebop) {
      if (!std::strcmp(Arg, "--entry")) {
        const char *V = Value(Arg);
        if (!V)
          return 2;
        O.Bebop.EntryProc = V;
        continue;
      }
      if (!std::strcmp(Arg, "--invariant")) {
        if (I + 2 >= Argc) {
          std::fprintf(stderr, "%s: --invariant expects <proc> <label>\n",
                       Name);
          return 2;
        }
        O.Bebop.InvariantProc = Argv[++I];
        O.Bebop.InvariantLabel = Argv[++I];
        continue;
      }
      if (!std::strcmp(Arg, "--trace")) {
        O.Bebop.PrintTrace = true;
        continue;
      }
    }

    std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", Name,
                 Arg);
    return 2;
  }

  size_t Want = Tool == ToolKind::C2bp ? 2 : 1;
  if (Out.Inputs.size() != Want) {
    const char *What = Tool == ToolKind::C2bp
                           ? "<program.c> <predicates.txt>"
                           : (Tool == ToolKind::Slam ? "<program.c>"
                                                     : "<program.bp>");
    std::fprintf(stderr, "usage: %s %s [options] (try --help)\n", Name,
                 What);
    return 2;
  }
  return std::nullopt;
}

} // namespace tools
} // namespace slam

#endif // TOOLS_PIPELINEFLAGS_H
