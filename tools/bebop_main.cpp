//===- bebop_main.cpp - The bebop command-line tool -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: bebop <program.bp> [options] — see `bebop --help` (the flag
// set lives in tools/PipelineFlags.h, shared with slam and c2bp).
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "PipelineFlags.h"
#include "bebop/Bebop.h"
#include "bp/BPParser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace slam;

int main(int argc, char **argv) {
  tools::PipelineArgs PA;
  if (auto Exit =
          tools::parsePipelineFlags(tools::ToolKind::Bebop, argc, argv, PA))
    return *Exit;
  const slamtool::BebopToolOptions &Options = PA.Options.Bebop;

  std::ifstream In(PA.Inputs[0]);
  if (!In) {
    std::fprintf(stderr, "bebop: cannot read '%s'\n", PA.Inputs[0].c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  DiagnosticEngine Diags;
  auto P = bp::parseBProgram(Buf.str(), Diags);
  if (!P || !bp::verifyBProgram(*P, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (!P->findProc(Options.EntryProc)) {
    std::fprintf(stderr, "bebop: no procedure '%s'\n",
                 Options.EntryProc.c_str());
    return 2;
  }

  tools::ObservabilityFlags Obs(PA.Options.Obs);
  Obs.install();
  StatsRegistry Stats;
  bebop::Bebop Checker(*P, &Stats);
  auto R = Checker.run(Options.EntryProc);
  std::printf("assert violated: %s\n", R.AssertViolated ? "yes" : "no");
  if (R.AssertViolated) {
    std::printf("failing procedure: %s\n", R.FailingProc.c_str());
    if (Options.PrintTrace) {
      std::printf("trace (%zu steps):\n", R.Trace.size());
      for (const auto &Step : R.Trace)
        std::printf("  [%s] %s", Step.ProcName.c_str(),
                    Step.Stmt ? bp::printBStmt(*Step.Stmt).c_str()
                              : "<entry>\n");
    }
  }
  if (!Options.InvariantProc.empty())
    std::printf("invariant at %s:%s: %s\n", Options.InvariantProc.c_str(),
                Options.InvariantLabel.c_str(),
                Checker.invariantAtLabel(Options.InvariantProc,
                                         Options.InvariantLabel).c_str());
  if (Obs.wantReport())
    tools::ObservabilityFlags::printStatsReport(stdout, Stats);
  if (!Obs.finish("bebop", Stats))
    return 2;
  return R.AssertViolated ? 1 : 0;
}
