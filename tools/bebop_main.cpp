//===- bebop_main.cpp - The bebop command-line tool -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: bebop <program.bp> [options]
//
//   --entry <proc>            entry procedure (default: main)
//   --invariant <proc> <label> print the reachable-state invariant at a
//                              labeled statement
//   --trace                   print the counterexample trace on failure
//   --trace-out <file>        write a Chrome trace-event JSON file
//   --stats-json <file>       write the statistics registry as JSON
//   --report                  print stats + histogram summary
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "bebop/Bebop.h"
#include "bp/BPParser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace slam;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bebop <program.bp> [options]\n");
    return 2;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "bebop: cannot read '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  std::string Entry = "main";
  std::string InvProc, InvLabel;
  bool PrintTrace = false;
  tools::ObservabilityFlags Obs;
  for (int I = 2; I < argc; ++I) {
    switch (Obs.tryParse("bebop", argc, argv, I)) {
    case tools::ObservabilityFlags::Parse::Consumed:
      continue;
    case tools::ObservabilityFlags::Parse::Error:
      return 2;
    case tools::ObservabilityFlags::Parse::NotMine:
      break;
    }
    if (!std::strcmp(argv[I], "--entry") && I + 1 < argc) {
      Entry = argv[++I];
    } else if (!std::strcmp(argv[I], "--invariant") && I + 2 < argc) {
      InvProc = argv[++I];
      InvLabel = argv[++I];
    } else if (!std::strcmp(argv[I], "--trace")) {
      PrintTrace = true;
    } else {
      std::fprintf(stderr, "bebop: unknown option '%s'\n", argv[I]);
      return 2;
    }
  }

  DiagnosticEngine Diags;
  auto P = bp::parseBProgram(Buf.str(), Diags);
  if (!P || !bp::verifyBProgram(*P, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (!P->findProc(Entry)) {
    std::fprintf(stderr, "bebop: no procedure '%s'\n", Entry.c_str());
    return 2;
  }

  Obs.install();
  StatsRegistry Stats;
  bebop::Bebop Checker(*P, &Stats);
  auto R = Checker.run(Entry);
  std::printf("assert violated: %s\n", R.AssertViolated ? "yes" : "no");
  if (R.AssertViolated) {
    std::printf("failing procedure: %s\n", R.FailingProc.c_str());
    if (PrintTrace) {
      std::printf("trace (%zu steps):\n", R.Trace.size());
      for (const auto &Step : R.Trace)
        std::printf("  [%s] %s", Step.ProcName.c_str(),
                    Step.Stmt ? bp::printBStmt(*Step.Stmt).c_str()
                              : "<entry>\n");
    }
  }
  if (!InvProc.empty())
    std::printf("invariant at %s:%s: %s\n", InvProc.c_str(),
                InvLabel.c_str(),
                Checker.invariantAtLabel(InvProc, InvLabel).c_str());
  if (Obs.wantReport())
    tools::ObservabilityFlags::printStatsReport(stdout, Stats);
  if (!Obs.finish("bebop", Stats))
    return 2;
  return R.AssertViolated ? 1 : 0;
}
