//===- c2bp_main.cpp - The c2bp command-line tool ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: c2bp <program.c> <predicates.txt> [options]
//
//   -k <n>          maximum cube length (default: unlimited)
//   -j <n>          worker threads for the cube searches (default: 1;
//                   0 = one per hardware thread). Output is identical
//                   for every -j value.
//   --no-cone       disable the cone-of-influence optimization
//   --no-enforce    do not emit the enforce data invariant
//   --no-alias      use the syntactic alias oracle only
//   --alias <mode>  points-to mode: das (default), andersen, steensgaard
//   --stats         print statistics to stderr
//   --trace-out <file>    write a Chrome trace-event JSON file
//   --stats-json <file>   write the statistics registry as JSON
//   --report              print stats + histogram summary to stderr
//   --slow-query-ms <ms>  log slow prover queries to stderr
//
// Writes the boolean program BP(P, E) to stdout.
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "support/CliArgs.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace slam;

static bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: c2bp <program.c> <predicates.txt> [options]\n");
    return 2;
  }
  std::string Source, PredText;
  if (!readFile(argv[1], Source)) {
    std::fprintf(stderr, "c2bp: cannot read '%s'\n", argv[1]);
    return 2;
  }
  if (!readFile(argv[2], PredText)) {
    std::fprintf(stderr, "c2bp: cannot read '%s'\n", argv[2]);
    return 2;
  }

  c2bp::C2bpOptions Options;
  bool PrintStats = false;
  tools::ObservabilityFlags Obs;
  for (int I = 3; I < argc; ++I) {
    long long N;
    switch (Obs.tryParse("c2bp", argc, argv, I)) {
    case tools::ObservabilityFlags::Parse::Consumed:
      continue;
    case tools::ObservabilityFlags::Parse::Error:
      return 2;
    case tools::ObservabilityFlags::Parse::NotMine:
      break;
    }
    if (!std::strcmp(argv[I], "-k") && I + 1 < argc) {
      if (!cli::intArg("c2bp", "-k", argv[++I], 0, N))
        return 2;
      Options.Cubes.MaxCubeLength = static_cast<int>(N);
    } else if (!std::strcmp(argv[I], "-j") && I + 1 < argc) {
      if (!cli::workersArg("c2bp", argv[++I], Options.NumWorkers))
        return 2;
      if (Options.NumWorkers == 0)
        Options.NumWorkers =
            static_cast<int>(ThreadPool::defaultConcurrency());
    } else if (!std::strcmp(argv[I], "--no-shared-cache")) {
      Options.UseSharedProverCache = false;
    } else if (!std::strcmp(argv[I], "--no-cone")) {
      Options.Cubes.ConeOfInfluence = false;
    } else if (!std::strcmp(argv[I], "--no-enforce")) {
      Options.UseEnforce = false;
    } else if (!std::strcmp(argv[I], "--no-alias")) {
      Options.UseAliasAnalysis = false;
    } else if (!std::strcmp(argv[I], "--alias") && I + 1 < argc) {
      std::string Mode = argv[++I];
      if (Mode == "das")
        Options.AliasMode = alias::Mode::Das;
      else if (Mode == "andersen")
        Options.AliasMode = alias::Mode::Andersen;
      else if (Mode == "steensgaard")
        Options.AliasMode = alias::Mode::Steensgaard;
      else {
        std::fprintf(stderr, "c2bp: unknown alias mode '%s'\n",
                     Mode.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[I], "--stats")) {
      PrintStats = true;
    } else {
      std::fprintf(stderr, "c2bp: unknown option '%s'\n", argv[I]);
      return 2;
    }
  }

  Obs.install();
  StatsRegistry Stats;
  DiagnosticEngine Diags;
  auto Program = cfront::frontend(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, PredText, Diags);
  if (!Preds) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }

  auto BP = c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, Options,
                                  &Stats);
  if (!BP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }
  std::printf("%s", BP->str().c_str());
  if (PrintStats)
    std::fprintf(stderr, "%s", Stats.str().c_str());
  // stdout carries the boolean program, so the report goes to stderr.
  if (Obs.wantReport())
    tools::ObservabilityFlags::printStatsReport(stderr, Stats);
  if (!Obs.finish("c2bp", Stats))
    return 2;
  return 0;
}
