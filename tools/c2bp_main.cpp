//===- c2bp_main.cpp - The c2bp command-line tool ---------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: c2bp <program.c> <predicates.txt> [options] — see
// `c2bp --help` (the flag set lives in tools/PipelineFlags.h, shared
// with slam and bebop).
//
// Writes the boolean program BP(P, E) to stdout; reports go to stderr.
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "PipelineFlags.h"
#include "c2bp/C2bp.h"
#include "cfront/Normalize.h"
#include "prover/CacheBackend.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

using namespace slam;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

int main(int argc, char **argv) {
  tools::PipelineArgs PA;
  if (auto Exit =
          tools::parsePipelineFlags(tools::ToolKind::C2bp, argc, argv, PA))
    return *Exit;

  std::string Source, PredText;
  if (!readFile(PA.Inputs[0], Source)) {
    std::fprintf(stderr, "c2bp: cannot read '%s'\n", PA.Inputs[0].c_str());
    return 2;
  }
  if (!readFile(PA.Inputs[1], PredText)) {
    std::fprintf(stderr, "c2bp: cannot read '%s'\n", PA.Inputs[1].c_str());
    return 2;
  }

  c2bp::C2bpOptions Options = PA.Options.C2bp;
  // Standalone persistence: one run is one "iteration", so only the
  // prover cache (not the cross-iteration memo) applies here.
  std::unique_ptr<prover::FileCacheBackend> Backend;
  std::unique_ptr<prover::SharedProverCache> RunCache;
  if (!PA.Options.ProverCachePath.empty()) {
    Backend = std::make_unique<prover::FileCacheBackend>(
        PA.Options.ProverCachePath);
    RunCache = std::make_unique<prover::SharedProverCache>(Backend.get());
    Options.ExternalCache = RunCache.get();
  }

  tools::ObservabilityFlags Obs(PA.Options.Obs);
  Obs.install();
  StatsRegistry Stats;
  DiagnosticEngine Diags;
  auto Program = cfront::frontend(Source, Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }
  logic::LogicContext Ctx;
  auto Preds = c2bp::parsePredicateFile(Ctx, PredText, Diags);
  if (!Preds) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }

  auto BP = c2bp::abstractProgram(*Program, *Preds, Ctx, Diags, Options,
                                  &Stats);
  if (!BP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("c2bp", Stats);
    return 1;
  }
  std::printf("%s", BP->str().c_str());
  if (PA.Options.PrintStats)
    std::fprintf(stderr, "%s", Stats.str().c_str());
  // stdout carries the boolean program, so the report goes to stderr.
  if (Obs.wantReport())
    tools::ObservabilityFlags::printStatsReport(stderr, Stats);
  if (!Obs.finish("c2bp", Stats))
    return 2;
  return 0;
}
