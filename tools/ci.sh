#!/usr/bin/env bash
#===- tools/ci.sh - Build-and-test pipeline ---------------------------------===#
#
# Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
#
# Jobs:
#   default    RelWithDebInfo build + full ctest suite
#   tsan       ThreadSanitizer build + the concurrency-sensitive tests
#              (parallel abstraction, prover, thread pool/support)
#   asan       AddressSanitizer build + full ctest suite
#   all        every job above, in order
#
# Usage: tools/ci.sh [default|tsan|asan|all]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOB="${1:-default}"

run_default() {
  echo "=== ci: default build + full test suite ==="
  cmake -B "$ROOT/build" -S "$ROOT" -DSLAM_SANITIZE=
  cmake --build "$ROOT/build" -j
  ctest --test-dir "$ROOT/build" --output-on-failure -j
}

run_tsan() {
  echo "=== ci: ThreadSanitizer build + parallel tests ==="
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DSLAM_SANITIZE=thread
  cmake --build "$ROOT/build-tsan" -j
  # The parallel abstraction tests drive the worker pool, the shared
  # prover cache, and the merged statistics; the prover and support
  # suites cover the pieces in isolation.
  ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
    -R 'ParallelAbstraction|ThreadPool|Stats|Prover'
}

run_asan() {
  echo "=== ci: AddressSanitizer build + full test suite ==="
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DSLAM_SANITIZE=address
  cmake --build "$ROOT/build-asan" -j
  ctest --test-dir "$ROOT/build-asan" --output-on-failure -j
}

case "$JOB" in
  default) run_default ;;
  tsan)    run_tsan ;;
  asan)    run_asan ;;
  all)     run_default; run_tsan; run_asan ;;
  *) echo "ci.sh: unknown job '$JOB' (default|tsan|asan|all)" >&2; exit 2 ;;
esac
echo "=== ci: $JOB passed ==="
