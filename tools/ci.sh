#!/usr/bin/env bash
#===- tools/ci.sh - Build-and-test pipeline ---------------------------------===#
#
# Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
#
# Jobs:
#   default    RelWithDebInfo build + full ctest suite
#   tsan       ThreadSanitizer build + the concurrency-sensitive tests
#              (parallel abstraction, prover, thread pool/support,
#              concurrent span tracing)
#   asan       AddressSanitizer build + full ctest suite
#   release    Release (-DNDEBUG) build + the suites whose soundness
#              checks must not live in assert() (rational overflow,
#              Simplex, BDD engine incl. the deep-chain regression)
#   observability  slam with --trace-out/--stats-json on the example
#              programs; validates both emitted JSON documents
#   incremental  slam twice against one --prover-cache file; asserts
#              byte-identical stdout and a warm run answered almost
#              entirely from the persistent cache
#   all        every job above, in order
#
# Usage: tools/ci.sh [default|tsan|asan|release|observability|incremental|all]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOB="${1:-default}"

run_default() {
  echo "=== ci: default build + full test suite ==="
  cmake -B "$ROOT/build" -S "$ROOT" -DSLAM_SANITIZE=
  cmake --build "$ROOT/build" -j
  ctest --test-dir "$ROOT/build" --output-on-failure -j
}

run_tsan() {
  echo "=== ci: ThreadSanitizer build + parallel tests ==="
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DSLAM_SANITIZE=thread
  cmake --build "$ROOT/build-tsan" -j
  # The parallel abstraction tests drive the worker pool, the shared
  # prover cache, and the merged statistics; the prover and support
  # suites cover the pieces in isolation.
  ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
    -R 'ParallelAbstraction|ThreadPool|Stats|Prover|Trace|Histogram|Observability'
}

run_asan() {
  echo "=== ci: AddressSanitizer build + full test suite ==="
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DSLAM_SANITIZE=address
  cmake --build "$ROOT/build-asan" -j
  ctest --test-dir "$ROOT/build-asan" --output-on-failure -j
}

run_release() {
  echo "=== ci: Release (-DNDEBUG) build + assert-sensitive tests ==="
  cmake -B "$ROOT/build-release" -S "$ROOT" -DSLAM_SANITIZE= \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-release" -j
  # Kept narrow (this runs in a 1-CPU container): the suites guarding
  # behavior that once hid behind assertions — Rational overflow
  # poisoning, Simplex Unknown propagation, and the BDD engine with its
  # differential and deep-chain regressions.
  ctest --test-dir "$ROOT/build-release" --output-on-failure \
    -R 'Rational|Simplex|Bdd|DifferentialBdd|DeepBdd'
}

run_observability() {
  echo "=== ci: observability: tracing + stats on the examples ==="
  cmake -B "$ROOT/build" -S "$ROOT" -DSLAM_SANITIZE=
  cmake --build "$ROOT/build" -j --target slam
  local TMP
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' RETURN
  # Each run must produce a parseable Chrome trace and stats export;
  # -j 2 exercises worker-thread span emission on the locking example.
  "$ROOT/build/tools/slam" "$ROOT/examples/programs/locking.c" \
    --lock AcquireLock,ReleaseLock -j 2 --report \
    --trace-out "$TMP/locking.trace.json" \
    --stats-json "$TMP/locking.stats.json"
  "$ROOT/build/tools/slam" "$ROOT/examples/programs/irp.c" \
    --irp CompleteRequest,MarkPending --report \
    --trace-out "$TMP/irp.trace.json" \
    --stats-json "$TMP/irp.stats.json"
  for F in "$TMP"/*.json; do
    python3 -m json.tool "$F" > /dev/null
    echo "ci: valid JSON: $(basename "$F")"
  done
}

run_incremental() {
  echo "=== ci: incremental: cold vs warm persistent prover cache ==="
  cmake -B "$ROOT/build" -S "$ROOT" -DSLAM_SANITIZE=
  cmake --build "$ROOT/build" -j --target slam
  local TMP
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' RETURN
  # Two identical invocations sharing one cache file. The first fills
  # it; the second must print byte-identical stdout (the contract that
  # lets --prover-cache be turned on anywhere) while doing almost none
  # of the prover work.
  "$ROOT/build/tools/slam" "$ROOT/examples/programs/locking.c"     --lock AcquireLock,ReleaseLock --prover-cache "$TMP/prover.cache"     --stats-json "$TMP/cold.stats.json" > "$TMP/cold.out"
  "$ROOT/build/tools/slam" "$ROOT/examples/programs/locking.c"     --lock AcquireLock,ReleaseLock --prover-cache "$TMP/prover.cache"     --stats-json "$TMP/warm.stats.json" > "$TMP/warm.out"
  cmp "$TMP/cold.out" "$TMP/warm.out"
  echo "ci: cold and warm stdout are byte-identical"
  python3 - "$TMP/cold.stats.json" "$TMP/warm.stats.json" <<'PY'
import json, sys
cold = json.load(open(sys.argv[1]))["counters"]
warm = json.load(open(sys.argv[2]))["counters"]
cold_calls = cold.get("prover.calls", 0)
warm_calls = warm.get("prover.calls", 0)
disk = warm.get("prover.disk_cache_hits", 0)
assert cold_calls > 0, "cold run made no prover calls?"
assert disk > 0, "warm run never hit the persistent cache"
# The acceptance bar: >= 90% of the cold run's prover work vanishes.
assert warm_calls * 10 <= cold_calls,     f"warm run still made {warm_calls}/{cold_calls} prover calls"
print(f"ci: warm run: {warm_calls} prover calls "
      f"(cold: {cold_calls}), {disk} persistent-cache hits")
PY
}

case "$JOB" in
  default) run_default ;;
  tsan)    run_tsan ;;
  asan)    run_asan ;;
  release) run_release ;;
  observability) run_observability ;;
  incremental) run_incremental ;;
  all)     run_default; run_tsan; run_asan; run_release; run_observability; run_incremental ;;
  *) echo "ci.sh: unknown job '$JOB' (default|tsan|asan|release|observability|incremental|all)" >&2; exit 2 ;;
esac
echo "=== ci: $JOB passed ==="
