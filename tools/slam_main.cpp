//===- slam_main.cpp - The SLAM command-line driver -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: slam <program.c> [options] — see `slam --help` (the flag set
// lives in tools/PipelineFlags.h, shared with c2bp and bebop).
//
// stdout carries only the stable result lines (verdict, iterations,
// predicates, error path); everything run-dependent — prover-call
// volume, cache effectiveness, the flight recorder — is behind
// --report / --stats-json, so a cold run, a warm run against a
// persistent cache, and a cache-disabled run print byte-identical
// output.
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "PipelineFlags.h"
#include "cfront/Normalize.h"
#include "slam/Cegar.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace slam;
using slamtool::SlamResult;

/// The logic context must outlive results that reference its terms.
static logic::LogicContext &Ctx() {
  static logic::LogicContext C;
  return C;
}

int main(int argc, char **argv) {
  tools::PipelineArgs PA;
  if (auto Exit =
          tools::parsePipelineFlags(tools::ToolKind::Slam, argc, argv, PA))
    return *Exit;

  std::ifstream In(PA.Inputs[0]);
  if (!In) {
    std::fprintf(stderr, "slam: cannot read '%s'\n", PA.Inputs[0].c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  tools::ObservabilityFlags Obs(PA.Options.Obs);
  Obs.install();
  DiagnosticEngine Diags;
  StatsRegistry Stats;
  std::optional<SlamResult> R;
  if (PA.HaveSpec) {
    R = slamtool::checkSafety(Source, PA.Spec, Ctx(), Diags, PA.Options,
                              &Stats);
  } else {
    auto P = cfront::frontend(Source, Diags);
    if (P)
      R = slamtool::checkProgram(*P, {}, Ctx(), PA.Options, &Stats);
  }
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("slam", Stats);
    return 2;
  }

  const char *Verdict =
      R->V == SlamResult::Verdict::Validated  ? "VALIDATED"
      : R->V == SlamResult::Verdict::BugFound ? "BUG FOUND"
                                              : "UNKNOWN";
  std::printf("verdict: %s\n", Verdict);
  std::printf("iterations: %d\n", R->Iterations);
  std::printf("predicates: %zu\n", R->Predicates.totalCount());
  if (R->V == SlamResult::Verdict::BugFound) {
    std::printf("error path (procedures entered): ");
    std::string Last;
    for (const auto &Step : R->Trace) {
      if (Step.ProcName != Last)
        std::printf("%s ", Step.ProcName.c_str());
      Last = Step.ProcName;
    }
    std::printf("\n");
  }

  if (Obs.wantReport()) {
    std::printf("\nCEGAR flight recorder:\n");
    std::printf("%5s %6s %7s %6s %6s %7s %6s %6s %10s %9s %9s %9s %6s\n",
                "iter", "preds", "prover", "hits", "disk", "cubes", "reuse",
                "recomp", "bdd-nodes", "c2bp(s)", "bebop(s)", "newton(s)",
                "new");
    for (const slamtool::IterationRecord &Rec : R->FlightLog)
      std::printf("%5d %6zu %7llu %6llu %6llu %7llu %6llu %6llu %10llu "
                  "%9.3f %9.3f %9.3f %6zu\n",
                  Rec.Iteration, Rec.Predicates,
                  static_cast<unsigned long long>(Rec.ProverCalls),
                  static_cast<unsigned long long>(Rec.CacheHits),
                  static_cast<unsigned long long>(Rec.DiskHits),
                  static_cast<unsigned long long>(Rec.Cubes),
                  static_cast<unsigned long long>(Rec.StmtsReused),
                  static_cast<unsigned long long>(Rec.StmtsRecomputed),
                  static_cast<unsigned long long>(Rec.BddNodes),
                  Rec.C2bpSeconds, Rec.BebopSeconds, Rec.NewtonSeconds,
                  Rec.NewPredicates);
  }

  if (!Obs.finish("slam", Stats))
    return 2;
  return R->V == SlamResult::Verdict::BugFound ? 1 : 0;
}
