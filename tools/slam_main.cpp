//===- slam_main.cpp - The SLAM command-line driver -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: slam <program.c> [options]
//
//   --lock <acq>,<rel>      check the locking discipline on the two
//                           named interface functions
//   --irp <complete>,<pend> check the IRP completion discipline
//   --entry <proc>          entry procedure (default: main)
//   --max-iters <n>         refinement cap (default: 24)
//   -k <n>                  cube length limit (default: 3)
//   -j <n>                  worker threads for each abstraction pass
//                           (default: 1; 0 = one per hardware thread)
//
// Without a property option, the program's own assert statements are
// checked (starting from an empty predicate set).
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "slam/Cegar.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace slam;
using slamtool::SlamResult;

/// The logic context must outlive results that reference its terms.
static logic::LogicContext &Ctx() {
  static logic::LogicContext C;
  return C;
}

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: slam <program.c> [options]\n");
    return 2;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "slam: cannot read '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  slamtool::SlamOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  bool HaveSpec = false;
  slamtool::SafetySpec Spec;

  auto SplitPair = [](const char *Arg, std::string &A, std::string &B) {
    const char *Comma = std::strchr(Arg, ',');
    if (!Comma)
      return false;
    A.assign(Arg, Comma);
    B.assign(Comma + 1);
    return !A.empty() && !B.empty();
  };

  for (int I = 2; I < argc; ++I) {
    std::string A, B;
    if (!std::strcmp(argv[I], "--lock") && I + 1 < argc &&
        SplitPair(argv[I + 1], A, B)) {
      Spec = slamtool::SafetySpec::lockDiscipline(A, B);
      HaveSpec = true;
      ++I;
    } else if (!std::strcmp(argv[I], "--irp") && I + 1 < argc &&
               SplitPair(argv[I + 1], A, B)) {
      Spec = slamtool::SafetySpec::irpDiscipline(A, B);
      HaveSpec = true;
      ++I;
    } else if (!std::strcmp(argv[I], "--entry") && I + 1 < argc) {
      Options.EntryProc = argv[++I];
    } else if (!std::strcmp(argv[I], "--max-iters") && I + 1 < argc) {
      Options.MaxIterations = std::atoi(argv[++I]);
    } else if (!std::strcmp(argv[I], "-k") && I + 1 < argc) {
      Options.C2bp.Cubes.MaxCubeLength = std::atoi(argv[++I]);
    } else if (!std::strcmp(argv[I], "-j") && I + 1 < argc) {
      Options.C2bp.NumWorkers = std::atoi(argv[++I]);
      if (Options.C2bp.NumWorkers == 0)
        Options.C2bp.NumWorkers =
            static_cast<int>(ThreadPool::defaultConcurrency());
      if (Options.C2bp.NumWorkers < 1) {
        std::fprintf(stderr, "slam: bad worker count for -j\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "slam: unknown option '%s'\n", argv[I]);
      return 2;
    }
  }

  DiagnosticEngine Diags;
  StatsRegistry Stats;
  std::optional<SlamResult> R;
  if (HaveSpec) {
    R = slamtool::checkSafety(Source, Spec, Ctx(), Diags, Options, &Stats);
  } else {
    auto P = cfront::frontend(Source, Diags);
    if (P)
      R = slamtool::checkProgram(*P, {}, Ctx(), Options, &Stats);
  }
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  const char *Verdict =
      R->V == SlamResult::Verdict::Validated  ? "VALIDATED"
      : R->V == SlamResult::Verdict::BugFound ? "BUG FOUND"
                                              : "UNKNOWN";
  std::printf("verdict: %s\n", Verdict);
  std::printf("iterations: %d\n", R->Iterations);
  std::printf("predicates: %zu\n", R->Predicates.totalCount());
  std::printf("prover calls: %llu\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));
  if (R->V == SlamResult::Verdict::BugFound) {
    std::printf("error path (procedures entered): ");
    std::string Last;
    for (const auto &Step : R->Trace) {
      if (Step.ProcName != Last)
        std::printf("%s ", Step.ProcName.c_str());
      Last = Step.ProcName;
    }
    std::printf("\n");
  }
  return R->V == SlamResult::Verdict::BugFound ? 1 : 0;
}
