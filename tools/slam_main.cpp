//===- slam_main.cpp - The SLAM command-line driver -------------------------===//
//
// Part of the SLAM/C2bp reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Usage: slam <program.c> [options]
//
//   --lock <acq>,<rel>      check the locking discipline on the two
//                           named interface functions
//   --irp <complete>,<pend> check the IRP completion discipline
//   --entry <proc>          entry procedure (default: main)
//   --max-iters <n>         refinement cap (default: 24)
//   -k <n>                  cube length limit (default: 3)
//   -j <n>                  worker threads for each abstraction pass
//                           (default: 1; 0 = one per hardware thread)
//   --trace-out <file>      write a Chrome trace-event JSON file
//   --stats-json <file>     write the statistics registry as JSON
//   --report                print the CEGAR flight recorder table
//   --slow-query-ms <ms>    log slow prover queries to stderr
//
// Without a property option, the program's own assert statements are
// checked (starting from an empty predicate set).
//
//===----------------------------------------------------------------------===//

#include "ObservabilityFlags.h"
#include "cfront/Normalize.h"
#include "slam/Cegar.h"
#include "support/CliArgs.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace slam;
using slamtool::SlamResult;

/// The logic context must outlive results that reference its terms.
static logic::LogicContext &Ctx() {
  static logic::LogicContext C;
  return C;
}

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: slam <program.c> [options]\n");
    return 2;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "slam: cannot read '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  slamtool::SlamOptions Options;
  Options.C2bp.Cubes.MaxCubeLength = 3;
  bool HaveSpec = false;
  slamtool::SafetySpec Spec;

  auto SplitPair = [](const char *Arg, std::string &A, std::string &B) {
    const char *Comma = std::strchr(Arg, ',');
    if (!Comma)
      return false;
    A.assign(Arg, Comma);
    B.assign(Comma + 1);
    return !A.empty() && !B.empty();
  };

  tools::ObservabilityFlags Obs;
  for (int I = 2; I < argc; ++I) {
    std::string A, B;
    long long N;
    switch (Obs.tryParse("slam", argc, argv, I)) {
    case tools::ObservabilityFlags::Parse::Consumed:
      continue;
    case tools::ObservabilityFlags::Parse::Error:
      return 2;
    case tools::ObservabilityFlags::Parse::NotMine:
      break;
    }
    if (!std::strcmp(argv[I], "--lock") && I + 1 < argc &&
        SplitPair(argv[I + 1], A, B)) {
      Spec = slamtool::SafetySpec::lockDiscipline(A, B);
      HaveSpec = true;
      ++I;
    } else if (!std::strcmp(argv[I], "--irp") && I + 1 < argc &&
               SplitPair(argv[I + 1], A, B)) {
      Spec = slamtool::SafetySpec::irpDiscipline(A, B);
      HaveSpec = true;
      ++I;
    } else if (!std::strcmp(argv[I], "--entry") && I + 1 < argc) {
      Options.EntryProc = argv[++I];
    } else if (!std::strcmp(argv[I], "--max-iters") && I + 1 < argc) {
      if (!cli::intArg("slam", "--max-iters", argv[++I], 1, N))
        return 2;
      Options.MaxIterations = static_cast<int>(N);
    } else if (!std::strcmp(argv[I], "-k") && I + 1 < argc) {
      if (!cli::intArg("slam", "-k", argv[++I], 0, N))
        return 2;
      Options.C2bp.Cubes.MaxCubeLength = static_cast<int>(N);
    } else if (!std::strcmp(argv[I], "-j") && I + 1 < argc) {
      if (!cli::workersArg("slam", argv[++I], Options.C2bp.NumWorkers))
        return 2;
      if (Options.C2bp.NumWorkers == 0)
        Options.C2bp.NumWorkers =
            static_cast<int>(ThreadPool::defaultConcurrency());
    } else {
      std::fprintf(stderr, "slam: unknown option '%s'\n", argv[I]);
      return 2;
    }
  }

  Obs.install();
  DiagnosticEngine Diags;
  StatsRegistry Stats;
  std::optional<SlamResult> R;
  if (HaveSpec) {
    R = slamtool::checkSafety(Source, Spec, Ctx(), Diags, Options, &Stats);
  } else {
    auto P = cfront::frontend(Source, Diags);
    if (P)
      R = slamtool::checkProgram(*P, {}, Ctx(), Options, &Stats);
  }
  if (!R) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    Obs.finish("slam", Stats);
    return 2;
  }

  const char *Verdict =
      R->V == SlamResult::Verdict::Validated  ? "VALIDATED"
      : R->V == SlamResult::Verdict::BugFound ? "BUG FOUND"
                                              : "UNKNOWN";
  std::printf("verdict: %s\n", Verdict);
  std::printf("iterations: %d\n", R->Iterations);
  std::printf("predicates: %zu\n", R->Predicates.totalCount());
  std::printf("prover calls: %llu\n",
              static_cast<unsigned long long>(Stats.get("prover.calls")));
  if (R->V == SlamResult::Verdict::BugFound) {
    std::printf("error path (procedures entered): ");
    std::string Last;
    for (const auto &Step : R->Trace) {
      if (Step.ProcName != Last)
        std::printf("%s ", Step.ProcName.c_str());
      Last = Step.ProcName;
    }
    std::printf("\n");
  }

  if (Obs.wantReport()) {
    std::printf("\nCEGAR flight recorder:\n");
    std::printf("%5s %6s %7s %6s %7s %10s %9s %9s %9s %6s\n", "iter",
                "preds", "prover", "hits", "cubes", "bdd-nodes", "c2bp(s)",
                "bebop(s)", "newton(s)", "new");
    for (const slamtool::IterationRecord &Rec : R->FlightLog)
      std::printf("%5d %6zu %7llu %6llu %7llu %10llu %9.3f %9.3f %9.3f "
                  "%6zu\n",
                  Rec.Iteration, Rec.Predicates,
                  static_cast<unsigned long long>(Rec.ProverCalls),
                  static_cast<unsigned long long>(Rec.CacheHits),
                  static_cast<unsigned long long>(Rec.Cubes),
                  static_cast<unsigned long long>(Rec.BddNodes),
                  Rec.C2bpSeconds, Rec.BebopSeconds, Rec.NewtonSeconds,
                  Rec.NewPredicates);
  }

  if (!Obs.finish("slam", Stats))
    return 2;
  return R->V == SlamResult::Verdict::BugFound ? 1 : 0;
}
